package segstat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestSlopeSimpleLine(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	s := FromPoints(xs, ys)
	slope, ok := s.Slope()
	if !ok {
		t.Fatal("expected ok slope")
	}
	if !almostEq(slope, 2, 1e-12) {
		t.Fatalf("slope = %v, want 2", slope)
	}
	ic, ok := s.Intercept()
	if !ok || !almostEq(ic, 1, 1e-12) {
		t.Fatalf("intercept = %v (ok=%v), want 1", ic, ok)
	}
}

func TestSlopeDegenerate(t *testing.T) {
	var s Stats
	if _, ok := s.Slope(); ok {
		t.Fatal("empty stats should not have a slope")
	}
	s.Add(1, 5)
	if _, ok := s.Slope(); ok {
		t.Fatal("single point should not have a slope")
	}
	// Two points at the same x: zero x-variance.
	var v Stats
	v.Add(2, 1)
	v.Add(2, 9)
	if _, ok := v.Slope(); ok {
		t.Fatal("vertical segment should not have a slope")
	}
}

func TestSlopeNegative(t *testing.T) {
	s := FromPoints([]float64{0, 1, 2}, []float64{4, 2, 0})
	slope, ok := s.Slope()
	if !ok || !almostEq(slope, -2, 1e-12) {
		t.Fatalf("slope = %v, want -2", slope)
	}
}

// TestAdditivityTheorem is the core Theorem 5.1 property: the fit computed
// from merged statistics equals the fit computed over all points directly.
func TestAdditivityTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()*0.01
			ys[i] = r.NormFloat64()*5 + float64(i)*r.Float64()
		}
		cut := 1 + r.Intn(n-1)
		a := FromPoints(xs[:cut], ys[:cut])
		b := FromPoints(xs[cut:], ys[cut:])
		whole := FromPoints(xs, ys)
		merged := Merge(a, b)
		ws, _, wok := whole.Line()
		ms, _, mok := merged.Line()
		if wok != mok {
			return false
		}
		if !wok {
			return true
		}
		wi, _ := whole.Intercept()
		mi, _ := merged.Intercept()
		return almostEq(ws, ms, 1e-9) && almostEq(wi, mi, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMergeAssociative checks Merge is associative and commutative, which the
// SegmentTree relies on when combining partial segments in arbitrary order.
func TestMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Stats {
			var s Stats
			for i := 0; i < 3+r.Intn(5); i++ {
				s.Add(r.Float64()*100, r.NormFloat64()*10)
			}
			return s
		}
		a, b, c := mk(), mk(), mk()
		ab_c := Merge(Merge(a, b), c)
		a_bc := Merge(a, Merge(b, c))
		ba := Merge(b, a)
		ab := Merge(a, b)
		return almostEq(ab_c.SumXY, a_bc.SumXY, 1e-9) &&
			almostEq(ab_c.SumXX, a_bc.SumXX, 1e-9) &&
			almostEq(ab.SumX, ba.SumX, 1e-12) &&
			almostEq(ab.SumY, ba.SumY, 1e-12) &&
			ab.N == ba.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubInverseOfMerge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b Stats
		for i := 0; i < 5; i++ {
			a.Add(r.Float64()*10, r.Float64()*10)
			b.Add(r.Float64()*10, r.Float64()*10)
		}
		got := Sub(Merge(a, b), b)
		return almostEq(got.SumX, a.SumX, 1e-9) &&
			almostEq(got.SumY, a.SumY, 1e-9) &&
			almostEq(got.SumXY, a.SumXY, 1e-9) &&
			almostEq(got.SumXX, a.SumXX, 1e-9) &&
			got.N == a.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixRange(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	ys := []float64{1, 2, 1, 4, 3, 6, 5, 8}
	bins := make([]Stats, 0, len(xs)-1)
	for i := 0; i+1 < len(xs); i++ {
		var b Stats
		b.Add(xs[i], ys[i])
		b.Add(xs[i+1], ys[i+1])
		bins = append(bins, b)
	}
	p := BuildPrefix(bins)
	if p.NumBins() != len(bins) {
		t.Fatalf("NumBins = %d, want %d", p.NumBins(), len(bins))
	}
	// Range over all bins must equal direct merge of all bins.
	var all Stats
	for _, b := range bins {
		all = Merge(all, b)
	}
	got := p.Range(0, len(bins))
	if !almostEq(got.SumXY, all.SumXY, 1e-9) || got.N != all.N {
		t.Fatalf("full range mismatch: got %+v want %+v", got, all)
	}
	// Sub-range equality.
	var mid Stats
	for _, b := range bins[2:5] {
		mid = Merge(mid, b)
	}
	got = p.Range(2, 5)
	if !almostEq(got.SumXX, mid.SumXX, 1e-9) || got.N != mid.N {
		t.Fatalf("sub range mismatch: got %+v want %+v", got, mid)
	}
}

func TestPrefixRangePanics(t *testing.T) {
	p := BuildPrefix(make([]Stats, 4))
	for _, c := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Range(%d,%d) did not panic", c[0], c[1])
				}
			}()
			p.Range(c[0], c[1])
		}()
	}
}

func TestZNormalize(t *testing.T) {
	ys := []float64{2, 4, 6, 8}
	ZNormalize(ys)
	if !almostEq(Mean(ys), 0, 1e-12) {
		t.Fatalf("mean after znorm = %v, want 0", Mean(ys))
	}
	if !almostEq(Std(ys), 1, 1e-12) {
		t.Fatalf("std after znorm = %v, want 1", Std(ys))
	}
}

func TestZNormalizeConstant(t *testing.T) {
	ys := []float64{5, 5, 5}
	ZNormalize(ys)
	for _, y := range ys {
		if y != 0 {
			t.Fatalf("constant series should normalize to zeros, got %v", ys)
		}
	}
}

func TestZNormalizeEmpty(t *testing.T) {
	ZNormalize(nil) // must not panic
}

// TestZNormalizeInvariance: z-normalization makes the series invariant to
// affine transforms a·y + b (a>0), the property the paper relies on for
// scale/translation invariance.
func TestZNormalizeInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = r.NormFloat64() * 10
		}
		// Ensure non-constant.
		ys[0] = ys[1] + 1
		a := 0.5 + r.Float64()*10
		b := r.NormFloat64() * 100
		scaled := make([]float64, n)
		for i := range ys {
			scaled[i] = a*ys[i] + b
		}
		orig := append([]float64(nil), ys...)
		ZNormalize(orig)
		ZNormalize(scaled)
		for i := range orig {
			if !almostEq(orig[i], scaled[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty mean/std should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); !almostEq(m, 2, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if s := Std([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("std of constant = %v", s)
	}
}

// TestPrefixExtendBitIdentical: BuildPrefix(head).Extend(tail) must be
// bit-for-bit equal to BuildPrefix(head ++ tail) — the property the append
// path's incremental maintenance relies on.
func TestPrefixExtendBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		bins := make([]Stats, n)
		for i := range bins {
			for k := 0; k < r.Intn(4); k++ {
				bins[i].Add(r.NormFloat64()*100, r.NormFloat64()*100)
			}
		}
		cut := 0
		if n > 0 {
			cut = r.Intn(n + 1)
		}
		whole := BuildPrefix(bins)
		grown := BuildPrefix(bins[:cut]).Extend(bins[cut:])
		if len(whole) != len(grown) {
			return false
		}
		for i := range whole {
			if whole[i] != grown[i] { // exact float equality, intentionally
				return false
			}
		}
		// A nil prefix extends like a fresh build.
		var nilP Prefix
		fromNil := nilP.Extend(bins)
		for i := range whole {
			if whole[i] != fromNil[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExtremes checks the streaming capped-extreme tracker against a full
// sort of the observed values.
func TestExtremes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rr := 1 + r.Intn(6)
		n := r.Intn(40)
		vals := make([]float64, n)
		e := NewExtremes(rr)
		for i := range vals {
			vals[i] = r.NormFloat64() * 10
			e.Observe(vals[i])
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		k := rr
		if n < k {
			k = n
		}
		low, high := e.Low(), e.High()
		if len(low) != k || len(high) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if low[i] != sorted[i] || high[i] != sorted[n-1-i] {
				return false
			}
		}
		lp, hp := e.PrefixSums()
		if len(lp) != k+1 || len(hp) != k+1 {
			return false
		}
		var ls, hs float64
		for i := 0; i < k; i++ {
			ls += low[i]
			hs += high[i]
			if lp[i+1] != ls || hp[i+1] != hs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
