// Benchmarks mirroring every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each benchmark exercises the
// code path that regenerates the corresponding artifact on a reduced
// workload; cmd/experiments runs the full-scale versions and prints the
// tables themselves.
package shapesearch_test

import (
	"context"
	"fmt"
	"testing"

	"shapesearch"
	"shapesearch/internal/crf"
	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/gen"
	"shapesearch/internal/nlparser"
	"shapesearch/internal/regexlang"
)

// benchSeries extracts a subsampled dataset once.
func benchSeries(b *testing.B, ds gen.EvalDataset, factor int) []dataset.Series {
	b.Helper()
	series, err := dataset.Extract(ds.Table, ds.Spec)
	if err != nil {
		b.Fatal(err)
	}
	if factor > 1 {
		sub := make([]dataset.Series, 0, len(series)/factor+1)
		for i := 0; i < len(series); i += factor {
			sub = append(sub, series[i])
		}
		series = sub
	}
	return series
}

func benchOpts(alg executor.Algorithm, pruning bool) executor.Options {
	o := executor.DefaultOptions()
	o.Algorithm = alg
	o.Pruning = pruning
	o.Parallelism = 1
	return o
}

func runSearch(b *testing.B, series []dataset.Series, query string, opts executor.Options) {
	b.Helper()
	q := regexlang.MustParse(query)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.SearchSeries(series, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 measures the Figure 10 algorithm lineup on the Weather
// substitute (the full five-dataset sweep is cmd/experiments -run fig10).
func BenchmarkFig10(b *testing.B) {
	series := benchSeries(b, gen.Weather(), 4)
	const query = "(θ = 45° ⊗ d ⊗ u ⊗ d)"
	for _, alg := range []struct {
		name    string
		alg     executor.Algorithm
		pruning bool
	}{
		{"DP", executor.AlgDP, false},
		{"DTW", executor.AlgDTW, false},
		{"Greedy", executor.AlgGreedy, false},
		{"SegmentTree", executor.AlgSegmentTree, false},
		{"SegmentTreePruned", executor.AlgSegmentTree, true},
	} {
		b.Run(alg.name, func(b *testing.B) {
			runSearch(b, series, query, benchOpts(alg.alg, alg.pruning))
		})
	}
}

// BenchmarkFig11 measures end-to-end non-fuzzy queries (EXTRACT through
// SCORE) with and without push-down (Figure 11), on the Haptics substitute
// whose pinned window is the most selective: push-down (a)/(c) prunes rows
// at extraction.
func BenchmarkFig11_Pushdown(b *testing.B) {
	ds := gen.Haptics()
	q := regexlang.MustParse("[p{up},x.s=60,x.e=80]")
	for _, pd := range []struct {
		name string
		on   bool
	}{{"On", true}, {"Off", false}} {
		b.Run(pd.name, func(b *testing.B) {
			opts := benchOpts(executor.AlgAuto, false)
			opts.Pushdown = pd.on
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := executor.Search(ds.Table, ds.Spec, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 measures the accuracy-comparison path: DP ground truth
// plus a contender ranking on one dataset/query pair.
func BenchmarkFig12_Accuracy(b *testing.B) {
	series := benchSeries(b, gen.Weather(), 8)
	q := regexlang.MustParse("(f ⊗ u ⊗ d ⊗ f)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := benchOpts(executor.AlgDP, false)
		opts.K = 20
		if _, err := executor.SearchSeries(series, q, opts); err != nil {
			b.Fatal(err)
		}
		opts.Algorithm = executor.AlgSegmentTree
		if _, err := executor.SearchSeries(series, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13a sweeps trendline length (Figure 13a) for DP and
// SegmentTree on Worms prefixes.
func BenchmarkFig13a_Points(b *testing.B) {
	series := benchSeries(b, gen.Worms(), 16)
	for _, n := range []int{100, 300, 900} {
		prefixes := make([]dataset.Series, len(series))
		for i, s := range series {
			m := n
			if m > s.Len() {
				m = s.Len()
			}
			prefixes[i] = dataset.Series{Z: s.Z, X: s.X[:m], Y: s.Y[:m]}
		}
		for _, alg := range []struct {
			name string
			a    executor.Algorithm
		}{{"DP", executor.AlgDP}, {"SegmentTree", executor.AlgSegmentTree}} {
			b.Run(fmt.Sprintf("%s/n=%d", alg.name, n), func(b *testing.B) {
				runSearch(b, prefixes, "u ; d ; u ; d", benchOpts(alg.a, false))
			})
		}
	}
}

// BenchmarkFig13b sweeps the number of ShapeSegments (Figure 13b).
func BenchmarkFig13b_Segments(b *testing.B) {
	series := benchSeries(b, gen.Weather(), 8)
	queries := map[int]string{2: "u;d", 4: "u;d;u;d", 6: "u;d;u;d;u;d"}
	for _, k := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runSearch(b, series, queries[k], benchOpts(executor.AlgSegmentTree, false))
		})
	}
}

// BenchmarkFig13c sweeps collection size (Figure 13c) on Real Estate.
func BenchmarkFig13c_Collection(b *testing.B) {
	series := benchSeries(b, gen.RealEstate(), 1)
	for _, n := range []int{100, 400} {
		sub := series[:n]
		b.Run(fmt.Sprintf("viz=%d", n), func(b *testing.B) {
			runSearch(b, sub, "u ; d ; u ; d", benchOpts(executor.AlgSegmentTree, false))
		})
	}
}

// BenchmarkTable8_TaskSuite measures the end-to-end engine latency on a
// Table 10-style task query (the Table 8 / Fig 9b machine analog).
func BenchmarkTable8_TaskSuite(b *testing.B) {
	tbl := gen.Stocks(48, 120, 3)
	spec := shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"}
	series, err := shapesearch.Extract(tbl, spec)
	if err != nil {
		b.Fatal(err)
	}
	runSearch(b, series, "[p=up, m={2,}] & [p=down, m={2,}]", benchOpts(executor.AlgSegmentTree, false))
}

// BenchmarkFig9a_ScoringAccuracy measures the §7.3 scoring-function path:
// the optimal DP ranking used for the red accuracy bars.
func BenchmarkFig9a_ScoringAccuracy(b *testing.B) {
	tbl := gen.Stocks(32, 120, 3)
	series, err := shapesearch.Extract(tbl, shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"})
	if err != nil {
		b.Fatal(err)
	}
	runSearch(b, series, "u ; f ; d", benchOpts(executor.AlgDP, false))
}

// BenchmarkTable11_QueryVerification measures the Table 11 verification
// pass (positive-match counting) on one dataset.
func BenchmarkTable11_QueryVerification(b *testing.B) {
	ds := gen.Weather()
	series := benchSeries(b, ds, 8)
	q := regexlang.MustParse(ds.FuzzyQueries[0])
	opts := benchOpts(executor.AlgSegmentTree, false)
	opts.K = len(series)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := executor.SearchSeries(series, q, opts)
		if err != nil {
			b.Fatal(err)
		}
		positive := 0
		for _, r := range res {
			if r.Score > 0 {
				positive++
			}
		}
		if positive == 0 {
			b.Fatal("no positive matches")
		}
	}
}

// BenchmarkCRF_Train measures the Section 4 CRF training path.
func BenchmarkCRF_Train(b *testing.B) {
	corpus := nlparser.GenerateCorpus(60, 42)
	seqs := nlparser.ToSequences(corpus)
	cfg := crf.DefaultTrainConfig()
	cfg.Iterations = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crf.Train(seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNLParse measures natural-language parsing latency.
func BenchmarkNLParse(b *testing.B) {
	p := nlparser.NewParser()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Parse("show me genes that are rising, then going down, and then increasing"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegexParse measures visual-regex parsing latency.
func BenchmarkRegexParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := regexlang.Parse("[x.s=2, x.e=5, p=up, m=>>] ; (d | f) ; [p=up, m={2,5}]"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleViz isolates per-visualization segmentation cost for the
// two main engines (the unit underlying every runtime figure).
func BenchmarkSingleViz(b *testing.B) {
	series := benchSeries(b, gen.Worms(), 256)[:1]
	for _, alg := range []struct {
		name string
		a    executor.Algorithm
	}{{"DP", executor.AlgDP}, {"SegmentTree", executor.AlgSegmentTree}, {"Greedy", executor.AlgGreedy}} {
		b.Run(alg.name, func(b *testing.B) {
			runSearch(b, series, "u ; d ; u", benchOpts(alg.a, false))
		})
	}
}

// BenchmarkAblation_MinSegmentFrac measures the cost/effect of the
// perceptibility floor (DESIGN.md design decision: the floor plays the
// paper's binning-width role; smaller floors mean finer SegmentTree leaves
// and more DP candidates).
func BenchmarkAblation_MinSegmentFrac(b *testing.B) {
	series := benchSeries(b, gen.Worms(), 16)
	for _, frac := range []float64{0.01, 0.05, 0.10} {
		b.Run(fmt.Sprintf("frac=%v", frac), func(b *testing.B) {
			opts := benchOpts(executor.AlgSegmentTree, false)
			opts.MinSegmentFrac = frac
			runSearch(b, series, "u ; d ; u ; d", opts)
		})
	}
}

// BenchmarkAblation_Parallelism measures the pipelined executor's worker
// scaling across visualizations.
func BenchmarkAblation_Parallelism(b *testing.B) {
	series := benchSeries(b, gen.FiftyWords(), 4)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(executor.AlgSegmentTree, false)
			opts.Parallelism = workers
			runSearch(b, series, "d ; u ; f", opts)
		})
	}
}

// BenchmarkAblation_Pruning isolates the two-stage collective pruning
// effect at full collection size (Fig 13c's widening-gap claim). With
// Parallelism 1 this is the old sequential searchPruned path, now served
// by the unified shared-threshold pipeline.
func BenchmarkAblation_Pruning(b *testing.B) {
	series := benchSeries(b, gen.RealEstate(), 1)
	for _, pruning := range []bool{false, true} {
		b.Run(fmt.Sprintf("pruning=%v", pruning), func(b *testing.B) {
			runSearch(b, series, "u ; d ; u ; d", benchOpts(executor.AlgSegmentTree, pruning))
		})
	}
}

// BenchmarkCompile isolates query-plan compilation cost: validation,
// normalization, solver selection and nested sub-query pre-compilation —
// the work Compile hoists out of the per-request path.
func BenchmarkCompile(b *testing.B) {
	for _, q := range []struct{ name, query string }{
		{"Fuzzy", "u ; d ; u ; d"},
		{"Operators", "[x.s=2, x.e=5, p=up, m=>>] ; (d | f) ; [p=up, m={2,5}]"},
	} {
		parsed := regexlang.MustParse(q.query)
		b.Run(q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := executor.Compile(parsed, executor.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanReuse compares re-compiling per call (the SearchSeries
// wrapper) against compiling once and reusing the plan — the repeated-query
// serving pattern.
func BenchmarkPlanReuse(b *testing.B) {
	series := benchSeries(b, gen.Weather(), 8)
	q := regexlang.MustParse("u ; d ; u")
	opts := benchOpts(executor.AlgSegmentTree, false)
	b.Run("Recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := executor.SearchSeries(series, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Precompiled", func(b *testing.B) {
		plan, err := executor.Compile(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(series); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PrecompiledGrouped", func(b *testing.B) {
		plan, err := executor.Compile(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		vizs := plan.GroupSeries(series)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunGrouped(vizs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// batchQueryPool is the BenchmarkSearchBatch workload: related fuzzy
// queries (variants of rise/fall intents) — the fan-out traffic shape the
// batch executor exists for, with heavy unit-signature overlap.
var batchQueryPool = []string{
	"u ; d", "d ; u", "u ; d ; u", "d ; u ; d",
	"u ; d ; u ; d", "u ; f ; d", "d ; f ; u", "f ; u ; d",
	"u ; d ; f", "u? ; d ; u", "u ; d? ; u", "(u | d) ; f",
	"u ; (f | d)", "d ; u ; f", "f ; d ; u", "u ; f ; u",
}

// BenchmarkSearchBatch compares Q related queries executed as one
// MultiPlan pass against Q sequential Plan.Search calls — the serving
// comparison: sequential pays EXTRACT + GROUP + SEGMENT + SCORE per
// query, the batch pays extraction and grouping once and shares
// per-candidate segmentation state, memo entries and bound caches across
// every query. Same corpus, byte-identical per-query results, measured at
// Q = 4 and 16 on the Weather substitute.
func BenchmarkSearchBatch(b *testing.B) {
	ds := gen.Weather()
	ix := dataset.BuildIndex(ds.Table)
	for _, nq := range []int{4, 16} {
		qs := make([]shapesearch.Query, nq)
		for i, s := range batchQueryPool[:nq] {
			qs[i] = regexlang.MustParse(s)
		}
		opts := benchOpts(executor.AlgSegmentTree, false)
		plans := make([]*executor.Plan, nq)
		for i, q := range qs {
			p, err := executor.Compile(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			plans[i] = p
		}
		b.Run(fmt.Sprintf("Q=%d/Sequential", nq), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range plans {
					if _, err := p.Search(ix, ds.Spec); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("Q=%d/Batch", nq), func(b *testing.B) {
			mp, err := executor.NewMultiPlan(plans)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mp.Search(ix, ds.Spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchPruned measures the lossless-pruning speedup on a
// separated workload (gen.DriftPeaks): a drifting bulk whose sound score
// upper bound falls below the floor set by a few planted peaks. This is the
// regime pruning exists for — the ablation benchmark above shows the
// no-separation regime, where a lossless pruner cannot skip much.
func BenchmarkSearchPruned(b *testing.B) {
	tbl := gen.DriftPeaks(400, 256, 11)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "series", X: "t", Y: "v"})
	if err != nil {
		b.Fatal(err)
	}
	for _, pruning := range []bool{false, true} {
		b.Run(fmt.Sprintf("pruning=%v", pruning), func(b *testing.B) {
			runSearch(b, series, "u ; d ; u ; d", benchOpts(executor.AlgSegmentTree, pruning))
		})
	}
}

// BenchmarkIndexScaling measures the corpus shape index's headline claim:
// on a separated corpus whose strong set does not grow with N (a fixed
// number of planted zigzags over a drifting bulk), indexed search grows
// sub-linearly — a 10× corpus should cost well under 10× latency because
// envelope bounds skip whole subtrees, and the visited fraction should
// fall as N grows. The Scan sub-benchmark is the flat bound-first pruned
// scan over the same pre-grouped candidates (DisableAutoIndex keeps it off
// the index), the O(N) path the index replaces. Corpus generation, grouping
// and the index build all sit outside the timer: the index is
// query-independent and built once per corpus, the serving pattern.
func BenchmarkIndexScaling(b *testing.B) {
	q := regexlang.MustParse("u ; d ; u")
	for _, n := range []int{100_000, 1_000_000} {
		series := gen.DriftPeaksSeries(n, 16, 64, 9)
		opts := benchOpts(executor.AlgSegmentTree, true)
		plan, err := executor.Compile(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		vizs := plan.GroupSeries(series)
		ix := executor.BuildVizIndex(vizs, 0)
		b.Run(fmt.Sprintf("N=%d/Indexed", n), func(b *testing.B) {
			var st executor.IndexStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.RunIndexedStatsContext(context.Background(), ix, &st); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Visited)/float64(st.Candidates), "visited-frac")
		})
		flatOpts := opts
		flatOpts.DisableAutoIndex = true
		flat, err := executor.Compile(q, flatOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d/Scan", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := flat.RunGrouped(vizs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruning_SharedThreshold measures the unified pruned pipeline's
// worker scaling: all workers share one top-k heap whose floor is the live
// pruning threshold, so pruning and parallelism compose (they used to be
// mutually exclusive).
func BenchmarkPruning_SharedThreshold(b *testing.B) {
	series := benchSeries(b, gen.RealEstate(), 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(executor.AlgSegmentTree, true)
			opts.Parallelism = workers
			runSearch(b, series, "u ; d ; u ; d", opts)
		})
	}
}
