#!/usr/bin/env sh
# lint.sh — the pre-commit gate, mirroring CI's lint job:
#   gofmt (no unformatted files), go vet, and shapelint (the repo's own
#   invariant analyzers, run standalone over every package).
# staticcheck and govulncheck run too when installed, and are skipped with a
# note otherwise — CI installs them, local checkouts need not.
#
# Usage: scripts/lint.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== shapelint"
tmpbin=$(mktemp -d)
trap 'rm -rf "$tmpbin"' EXIT
go build -o "$tmpbin/shapelint" ./cmd/shapelint
"$tmpbin/shapelint" ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./... || fail=1
else
    echo "== staticcheck (not installed; skipping — CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./... || fail=1
else
    echo "== govulncheck (not installed; skipping — CI runs it)"
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED"
    exit 1
fi
echo "lint: ok"
