package shapesearch_test

import (
	"testing"

	"shapesearch"
	"shapesearch/internal/gen"
)

// TestGenomicsCaseStudy replays the Section 8 case study end to end on the
// synthetic gene-expression dataset: the planted biology must surface
// through the public API exactly as the paper's researchers found it.
func TestGenomicsCaseStudy(t *testing.T) {
	tbl := gen.Genes(120, 48, 2024)
	spec := shapesearch.ExtractSpec{Z: "gene", X: "hour", Y: "expression"}
	opts := shapesearch.DefaultOptions()
	opts.K = 20

	topSet := func(q shapesearch.Query) map[string]int {
		t.Helper()
		res, err := shapesearch.Search(tbl, spec, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]int, len(res))
		for i, r := range res {
			out[r.Z] = i + 1
		}
		return out
	}

	// R2's stem-cell query: rising at ~45° then high and flat. The planted
	// self-renewal genes gbx2, klf5 and spry4 must all match strongly —
	// the paper's "similar functionality" discovery. The dataset plants
	// ~15 more genes with the same profile, so the robust check is score
	// proximity to the best match, not exact rank among equals.
	opts.K = 120
	res, err := shapesearch.Search(tbl, spec, shapesearch.MustParseRegex("[p=45] ; [p=flat]"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.K = 20
	scores := make(map[string]float64, len(res))
	for _, r := range res {
		scores[r.Z] = r.Score
	}
	best := res[0].Score
	for _, g := range []string{"gbx2", "klf5", "spry4"} {
		sc, ok := scores[g]
		if !ok || sc < 0.5 || sc < best-0.25 {
			t.Errorf("self-renewal gene %s scored %v (best %v); want a strong match", g, sc, best)
		}
	}

	// R1's outlier: two peaks within a short window — pvt1 must appear in
	// the results panel (the paper's researcher spotted it among the top
	// matches, not necessarily first).
	ranks := topSet(shapesearch.MustParseRegex("[x.s=., x.e=.+12, p=[[p=up, m={2,}]]]"))
	if pos, ok := ranks["pvt1"]; !ok || pos > 8 {
		t.Errorf("two-peaks-in-window query should surface pvt1 near the top, got rank %d (ok=%v)", pos, ok)
	}

	// The drug-suppression NL query must parse and return suppressed-profile
	// genes with positive scores.
	q, _, err := shapesearch.ParseNL("show me genes that are rising, then going down, and then increasing")
	if err != nil {
		t.Fatal(err)
	}
	nlRes, err := shapesearch.Search(tbl, spec, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(nlRes) == 0 || nlRes[0].Score < 0.4 {
		t.Fatalf("suppression query found nothing convincing: %+v", nlRes)
	}
}

// TestBuiltinUDPLibrary exercises the §7.2 extension through the public
// API: mathematical patterns compose with the algebra.
func TestBuiltinUDPLibrary(t *testing.T) {
	tbl := gen.Stocks(40, 120, 9)
	spec := shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"}
	opts := shapesearch.DefaultOptions()
	opts.UDPs = shapesearch.BuiltinUDPs()
	opts.K = 5

	// Recovery stocks fall then rise: the vshape UDP should surface them.
	res, err := shapesearch.Search(tbl, spec, shapesearch.MustParseRegex("[p=vshape]"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no vshape results")
	}
	found := false
	for _, r := range res {
		if len(r.Z) >= 3 && (r.Z[:3] == "rec" || r.Z[:3] == "w-s" || r.Z[:3] == "cup") {
			found = true
		}
	}
	if !found {
		zs := make([]string, len(res))
		for i, r := range res {
			zs[i] = r.Z
		}
		t.Errorf("vshape top-5 misses recovery/W/cup stocks: %v", zs)
	}

	// Composition with the algebra: choppy but net rising.
	res, err = shapesearch.Search(tbl, spec,
		shapesearch.MustParseRegex("[p=volatile] & [p=up]"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no volatile-up results")
	}
}
